/**
 * @file
 * Deterministic pseudo-random number generation.
 *
 * Every stochastic element of the repository (workload generators,
 * epsilon-greedy exploration, mix construction) draws from this
 * xorshift64* generator so that runs are exactly reproducible from a
 * seed. We deliberately avoid std::mt19937 to keep state tiny and
 * the hot path branch-free.
 */

#ifndef ATHENA_COMMON_RNG_HH
#define ATHENA_COMMON_RNG_HH

#include <cstdint>
#include <vector>

namespace athena
{

/**
 * xorshift64* PRNG. Period 2^64 - 1; passes BigCrush for our use.
 */
class Rng
{
  public:
    /** Construct from a non-zero seed (0 is remapped internally). */
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull)
        : state(seed ? seed : 0x9e3779b97f4a7c15ull)
    {}

    /** Next raw 64-bit value. */
    std::uint64_t
    next()
    {
        std::uint64_t x = state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        state = x;
        return x * 0x2545f4914f6cdd1dull;
    }

    /** Uniform integer in [0, bound). @pre bound > 0. */
    std::uint64_t
    below(std::uint64_t bound)
    {
        return next() % bound;
    }

    /** Uniform integer in [lo, hi]. */
    std::uint64_t
    range(std::uint64_t lo, std::uint64_t hi)
    {
        return lo + below(hi - lo + 1);
    }

    /** Uniform double in [0, 1). */
    double
    uniform()
    {
        return static_cast<double>(next() >> 11) * 0x1.0p-53;
    }

    /** Bernoulli trial with probability p. */
    bool
    chance(double p)
    {
        return uniform() < p;
    }

    /**
     * Precomputed-threshold form of chance(): uniform() < p is
     * exactly u < p * 2^53 for u = next() >> 11 (both sides exact
     * in double — u < 2^53 and the scale is a power of two), so a
     * caller that rolls against the same p every time can hoist the
     * float work into one ceil at setup. chanceT(chanceThreshold(p))
     * consumes one draw and returns bit-identical outcomes to
     * chance(p).
     */
    static std::uint64_t
    chanceThreshold(double p)
    {
        constexpr double kScale = 9007199254740992.0; // 2^53
        if (p <= 0.0)
            return 0;
        if (p >= 1.0)
            return 1ull << 53;
        return static_cast<std::uint64_t>(__builtin_ceil(p * kScale));
    }

    /** Bernoulli trial against a chanceThreshold() value. */
    bool
    chanceT(std::uint64_t threshold)
    {
        return (next() >> 11) < threshold;
    }

    /** Current internal state (for tests of determinism and for
     *  snapshot serialization). */
    std::uint64_t rawState() const { return state; }

    /** Restore a previously observed rawState() (snapshot resume).
     *  xorshift state is never 0; 0 is remapped like the ctor's. */
    void
    setRawState(std::uint64_t s)
    {
        state = s ? s : 0x9e3779b97f4a7c15ull;
    }

  private:
    std::uint64_t state;
};

/**
 * Bounded Zipf-like sampler used by graph workload generators.
 *
 * Produces indices in [0, n) with probability proportional to
 * 1 / (i + 1)^s via inverse-CDF over a precomputed table.
 */
class ZipfSampler
{
  public:
    ZipfSampler(std::uint64_t n, double s);

    /** Draw one sample using the supplied RNG. */
    std::uint64_t sample(Rng &rng) const;

    std::uint64_t domain() const { return n; }

  private:
    std::uint64_t n;
    /** Cumulative probability table, cdf.back() == 1.0. */
    std::vector<double> cdf;
};

} // namespace athena

#endif // ATHENA_COMMON_RNG_HH

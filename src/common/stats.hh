/**
 * @file
 * Statistics helpers used by the experiment runner and benches:
 * geometric mean, arithmetic mean, and quartile summaries for the
 * box-and-whisker style reporting of Fig. 8.
 */

#ifndef ATHENA_COMMON_STATS_HH
#define ATHENA_COMMON_STATS_HH

#include <cstddef>
#include <vector>

namespace athena
{

/** Geometric mean of strictly positive values. Empty input -> 1.0. */
double geomean(const std::vector<double> &values);

/** Arithmetic mean. Empty input -> 0.0. */
double mean(const std::vector<double> &values);

/**
 * Five-number-ish summary for box-and-whisker reporting
 * (Fig. 3 and Fig. 8a use exactly these statistics).
 */
struct QuartileSummary
{
    double min = 0.0;
    double q1 = 0.0;      ///< First quartile.
    double median = 0.0;
    double q3 = 0.0;      ///< Third quartile.
    double max = 0.0;
    double mean = 0.0;
    double whiskerLo = 0.0; ///< q1 - 1.5 * IQR, clamped to min.
    double whiskerHi = 0.0; ///< q3 + 1.5 * IQR, clamped to max.
};

/** Compute the summary. Empty input returns a zeroed summary. */
QuartileSummary quartiles(std::vector<double> values);

/**
 * Linear-interpolation percentile of a *sorted* vector,
 * p in [0, 100].
 */
double percentileSorted(const std::vector<double> &sorted, double p);

} // namespace athena

#endif // ATHENA_COMMON_STATS_HH

/**
 * @file
 * SIMD backend selection and the widened integer/float kernels
 * behind the batched inference plane.
 *
 * Two backends share every kernel's contract:
 *  - kScalar: the PR 9 straight-line loops, verbatim — the
 *    reference semantics and the fallback on non-x86 builds or
 *    pre-AVX2 hosts.
 *  - kAvx2: explicit 4x64-bit (hash) / 8x32-bit (scan) widening,
 *    compiled per-function with the avx2 target attribute so the
 *    translation unit builds without -mavx2 and the wide paths are
 *    only ever entered after a runtime CPU check.
 *
 * Every kernel is bit-identical across backends: the hash kernels
 * are pure integer math (the AVX2 64-bit multiply is emulated
 * exactly from 32x32 partial products), and the float accumulators
 * perform the same single IEEE add/divide per element in the same
 * order — lanes are independent accumulators, never reassociated
 * sums.
 *
 * Dispatch happens once at plane construction: consumers capture
 * activeBackend() in a member and branch on it per batch, so a
 * mid-run override cannot tear a plane between backends.
 * `ATHENA_SIMD=scalar|avx2|auto` (default auto) picks the
 * process-wide backend; forceBackend() is the in-process override
 * the bench A/B driver and the equivalence tests use between
 * Simulator constructions.
 */

#ifndef ATHENA_COMMON_SIMD_HH
#define ATHENA_COMMON_SIMD_HH

#include <cstddef>
#include <cstdint>

namespace athena
{
namespace simd
{

enum class Backend : std::uint8_t
{
    kScalar = 0,
    kAvx2 = 1,
};

/** Human-readable backend name ("scalar" / "avx2"). */
const char *backendName(Backend b);

/** True when this build targets x86-64 and the CPU executes AVX2. */
bool avx2Available();

/** What ATHENA_SIMD asked for. */
enum class Request : std::uint8_t
{
    kAuto = 0,
    kForceScalar = 1,
    kForceAvx2 = 2,
};

/**
 * Parse an ATHENA_SIMD value: "scalar"/"0" force scalar, "avx2"
 * forces AVX2, unset/""/"auto" (and anything unrecognized) is auto.
 */
Request parseRequest(const char *value);

/**
 * The dispatch rule, pure so tests can pin it: auto resolves to
 * AVX2 exactly when available; a forced AVX2 request falls back to
 * scalar (cleanly, never a crash) when the CPU lacks it.
 */
Backend resolve(Request request, bool avx2_ok);

/**
 * Process-wide backend: the ATHENA_SIMD request latched once on
 * first use and resolved against the CPU, unless forceBackend() is
 * in effect. Consumers capture this at construction.
 */
Backend activeBackend();

/** In-process override (clamped to scalar when AVX2 is missing) —
 *  takes effect for planes constructed after the call. */
void forceBackend(Backend b);

/** Drop the forceBackend() override (back to the env/CPU latch). */
void clearForcedBackend();

// --- hash kernels -------------------------------------------------

/** out[i] = mix64(in[i]). */
void mix64Batch(Backend b, const std::uint64_t *in, unsigned n,
                std::uint64_t *out);

/**
 * rows_out[i] = keyedHash(xs[i], key) & mask — the QVStore
 * plane-row materialization step (mask == rows - 1, rows a power
 * of two, where & equals the scalar path's modulo).
 */
void keyedHashMaskBatch(Backend b, const std::uint32_t *xs,
                        unsigned n, std::uint64_t key,
                        std::uint32_t mask, std::uint32_t *rows_out);

/**
 * POPET's four (pc, addr)-pure feature indices per access,
 * idx[i * 4 + f], table_mask == kTableSize - 1 (power of two).
 * Memo-free: recomputes every hash, exactly like the memo-free
 * scalar kernel.
 */
void popetPureIndicesBatch(Backend b, const std::uint64_t *pcs,
                           const std::uint64_t *addrs, unsigned n,
                           std::uint32_t table_mask,
                           std::uint16_t *idx);

/**
 * Pythia's delta-sequence fold: out[i] is the 4-step hashCombine
 * fold over keys[i]'s sign-extended bytes, oldest (high byte)
 * first — bit-identical to PythiaPrefetcher::deltaSeqHash.
 */
void deltaSeqFoldBatch(Backend b, const std::uint32_t *keys,
                       unsigned n, std::uint64_t *out);

// --- gather-free Q accumulators -----------------------------------

/**
 * q_out[i * actions + a] += plane[rows[i] * actions + a] for all
 * i < n, a < actions. One IEEE add per element — lanes are
 * independent accumulators, so the result is bit-identical to the
 * scalar loop for any backend.
 */
void accumulateRowsF64(Backend b, const double *plane,
                       const std::uint32_t *rows, unsigned n,
                       unsigned actions, double *q_out);

/**
 * Quantized variant: q_out[i * actions + a] +=
 * double(plane[rows[i] * actions + a]) / scale. The int8->double
 * conversion and the divide (scale a power of two) are exact, so
 * backends agree bitwise.
 */
void accumulateRowsI8(Backend b, const std::int8_t *plane,
                      const std::uint32_t *rows, unsigned n,
                      unsigned actions, double scale,
                      double *q_out);

// --- strided byte scans (record-window load discovery) ------------

/**
 * First index i in [pos, end) with base[i * stride] == value, or
 * end. The AVX2 path gathers 32-bit words, so the caller must
 * guarantee base[i * stride + 3] is readable for every i < end
 * (true for any field at byte offset <= stride - 4 of a packed
 * record array, e.g. TraceRecord::kind).
 */
unsigned scanStridedByteEq(Backend b, const unsigned char *base,
                           unsigned stride, unsigned pos,
                           unsigned end, unsigned char value);

/**
 * Collect up to max_out indices i in [*pos, end) with
 * base[i * stride] == value into out[], advancing *pos to the
 * first unexamined index (exactly one past the last accepted match
 * when the quota fills mid-span — the PR 9 loop's stopping point).
 * Returns the number collected. Same readability precondition as
 * scanStridedByteEq.
 */
unsigned collectStridedByteEq(Backend b, const unsigned char *base,
                              unsigned stride, unsigned *pos,
                              unsigned end, unsigned char value,
                              std::uint16_t *out, unsigned max_out);

} // namespace simd
} // namespace athena

#endif // ATHENA_COMMON_SIMD_HH

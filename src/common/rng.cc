/**
 * @file
 * ZipfSampler implementation.
 */

#include "common/rng.hh"

#include <algorithm>
#include <cmath>
#include <cstdint>

namespace athena
{

ZipfSampler::ZipfSampler(std::uint64_t n_, double s) : n(n_)
{
    cdf.reserve(n);
    double acc = 0.0;
    for (std::uint64_t i = 0; i < n; ++i) {
        acc += 1.0 / std::pow(static_cast<double>(i + 1), s);
        cdf.push_back(acc);
    }
    for (auto &v : cdf)
        v /= acc;
}

std::uint64_t
ZipfSampler::sample(Rng &rng) const
{
    double u = rng.uniform();
    auto it = std::lower_bound(cdf.begin(), cdf.end(), u);
    if (it == cdf.end())
        return n - 1;
    return static_cast<std::uint64_t>(it - cdf.begin());
}

} // namespace athena

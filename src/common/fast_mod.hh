/**
 * @file
 * Exact fast modulo by a runtime-constant divisor.
 *
 * The workload generators reduce full-range RNG words modulo
 * arbitrary (non-power-of-two) footprint sizes on nearly every
 * generated access; a 64-bit hardware divide there is one of the
 * larger single costs on the simulation hot path. FastMod
 * precomputes floor(2^64 / m) once and reduces via one widening
 * multiply plus at most one conditional subtract — the standard
 * Barrett argument bounds the quotient estimate error to 1, so the
 * result is bit-identical to the hardware `%` for every input.
 * Power-of-two divisors reduce with a mask.
 */

#ifndef ATHENA_COMMON_FAST_MOD_HH
#define ATHENA_COMMON_FAST_MOD_HH

#include <cstdint>

namespace athena
{

class FastMod
{
  public:
    FastMod() = default;

    explicit FastMod(std::uint64_t m) { init(m); }

    void
    init(std::uint64_t m)
    {
        div = m ? m : 1;
        if ((div & (div - 1)) == 0) {
            pow2Mask = div - 1;
            usePow2 = true;
        } else {
            // floor(2^64 / m) == floor((2^64 - 1) / m) for any m
            // that is not a power of two (2^64 mod m != 0).
            magic = ~0ull / div;
            usePow2 = false;
        }
    }

    std::uint64_t divisor() const { return div; }

    std::uint64_t
    mod(std::uint64_t x) const
    {
        if (usePow2)
            return x & pow2Mask;
        // q_hat in {q, q-1}: magic underestimates 2^64/m by less
        // than m/2^64 relative, so one subtract corrects it.
        auto q = static_cast<std::uint64_t>(
            (static_cast<unsigned __int128>(x) * magic) >> 64);
        std::uint64_t r = x - q * div;
        if (r >= div)
            r -= div;
        return r;
    }

  private:
    std::uint64_t div = 1;
    std::uint64_t magic = 0;
    std::uint64_t pow2Mask = 0;
    bool usePow2 = true;
};

} // namespace athena

#endif // ATHENA_COMMON_FAST_MOD_HH

/**
 * @file
 * Fundamental types and address arithmetic shared by every module.
 *
 * The simulator operates on 64-bit physical addresses, 64-byte cache
 * lines, and 4 KB pages, matching the configuration in Table 5 of the
 * Athena paper (HPCA 2026).
 */

#ifndef ATHENA_COMMON_TYPES_HH
#define ATHENA_COMMON_TYPES_HH

#include <cstdint>

namespace athena
{

/** Physical byte address. */
using Addr = std::uint64_t;

/** Core clock cycle count. */
using Cycle = std::uint64_t;

/** Cache line geometry (64 B lines). */
constexpr unsigned kLineShift = 6;
constexpr unsigned kLineBytes = 1u << kLineShift;

/** Page geometry (4 KB pages). */
constexpr unsigned kPageShift = 12;
constexpr unsigned kPageBytes = 1u << kPageShift;

/** Cache lines per page. */
constexpr unsigned kLinesPerPage = kPageBytes / kLineBytes;

/** Byte address -> cache-line number. */
constexpr Addr
lineNumber(Addr byte_addr)
{
    return byte_addr >> kLineShift;
}

/** Cache-line number -> byte address of the line base. */
constexpr Addr
lineBase(Addr line_number)
{
    return line_number << kLineShift;
}

/** Byte address -> page number. */
constexpr Addr
pageNumber(Addr byte_addr)
{
    return byte_addr >> kPageShift;
}

/** Cache-line offset of a byte address within its page [0, 64). */
constexpr unsigned
pageLineOffset(Addr byte_addr)
{
    return static_cast<unsigned>((byte_addr >> kLineShift) &
                                 (kLinesPerPage - 1));
}

/** Classification of a memory request by its originator. */
enum class AccessType : std::uint8_t
{
    kDemandLoad,   ///< Load issued by the core.
    kDemandStore,  ///< Store issued by the core.
    kPrefetch,     ///< Request issued by a hardware prefetcher.
    kOcp,          ///< Speculative request issued by the off-chip
                   ///< predictor directly to the memory controller.
};

/** Cache levels in the three-level hierarchy of Table 5. */
enum class CacheLevel : std::uint8_t
{
    kL1D = 0,
    kL2C = 1,
    kLLC = 2,
    kDram = 3,
};

} // namespace athena

#endif // ATHENA_COMMON_TYPES_HH

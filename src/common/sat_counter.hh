/**
 * @file
 * Saturating counters, the workhorse state element of branch
 * predictors, HMP component tables, and confidence fields.
 */

#ifndef ATHENA_COMMON_SAT_COUNTER_HH
#define ATHENA_COMMON_SAT_COUNTER_HH

#include <cstdint>

namespace athena
{

/**
 * An n-bit unsigned saturating counter.
 *
 * The counter saturates at [0, 2^Bits - 1]. taken() reports whether
 * the counter is in its upper half, which is the canonical 2-bit
 * predictor interpretation.
 */
template <unsigned Bits>
class SatCounter
{
    static_assert(Bits >= 1 && Bits <= 16, "counter width");

  public:
    static constexpr std::uint16_t kMax = (1u << Bits) - 1;
    static constexpr std::uint16_t kWeaklyTaken = 1u << (Bits - 1);

    explicit SatCounter(std::uint16_t init = kWeaklyTaken) : value(init) {}

    void
    increment()
    {
        if (value < kMax)
            ++value;
    }

    void
    decrement()
    {
        if (value > 0)
            --value;
    }

    /** Move towards taken (true) or not-taken (false). */
    void
    update(bool taken)
    {
        taken ? increment() : decrement();
    }

    bool taken() const { return value >= kWeaklyTaken; }
    std::uint16_t raw() const { return value; }

  private:
    std::uint16_t value;
};

/**
 * A signed saturating weight, used by perceptron predictors
 * (POPET, PPF, TLP). Saturates at [-2^(Bits-1), 2^(Bits-1) - 1].
 */
template <unsigned Bits>
class SignedSatCounter
{
    static_assert(Bits >= 2 && Bits <= 16, "weight width");

  public:
    static constexpr std::int32_t kMax = (1 << (Bits - 1)) - 1;
    static constexpr std::int32_t kMin = -(1 << (Bits - 1));

    explicit SignedSatCounter(std::int32_t init = 0) : value(init) {}

    /** Add delta with saturation. */
    void
    add(std::int32_t delta)
    {
        std::int32_t v = value + delta;
        if (v > kMax)
            v = kMax;
        if (v < kMin)
            v = kMin;
        value = v;
    }

    std::int32_t raw() const { return value; }

  private:
    std::int32_t value;
};

} // namespace athena

#endif // ATHENA_COMMON_SAT_COUNTER_HH

/**
 * @file
 * Minimal fixed-width text table printer used by the bench binaries
 * to emit the rows/series of each paper figure.
 */

#ifndef ATHENA_COMMON_TABLE_HH
#define ATHENA_COMMON_TABLE_HH

#include <ostream>
#include <string>
#include <vector>

namespace athena
{

/**
 * Collects rows of strings and pretty-prints them with aligned
 * columns. The first row added is treated as the header.
 */
class TextTable
{
  public:
    explicit TextTable(std::string title = "") : title(std::move(title)) {}

    /** Add a row; the first one becomes the header. */
    void addRow(std::vector<std::string> cells);

    /** Convenience: format a double with fixed precision. */
    static std::string num(double v, int precision = 4);

    /** Render to a stream. */
    void print(std::ostream &os) const;

  private:
    std::string title;
    std::vector<std::vector<std::string>> rows;
};

} // namespace athena

#endif // ATHENA_COMMON_TABLE_HH

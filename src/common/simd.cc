/**
 * @file
 * SIMD backend dispatch and kernel implementations.
 *
 * The AVX2 bodies are compiled with the per-function avx2 target
 * attribute (not -mavx2 for the whole TU), so a generic build still
 * contains them and the runtime CPU check alone decides whether
 * they run. Each wide path ends in a scalar tail that reuses the
 * exact reference loop, and the 64-bit multiply AVX2 lacks is
 * emulated from 32x32 partial products — bit-exact, since the
 * discarded high half of a 64x64 product never feeds mix64's
 * result.
 */

#include "common/simd.hh"

#include <atomic>
#include <cstdlib>
#include <cstring>

#include "common/hashing.hh"
#include "common/types.hh"

#if defined(__x86_64__) || defined(_M_X64)
#define ATHENA_SIMD_X86 1
#include <immintrin.h>
#else
#define ATHENA_SIMD_X86 0
#endif

namespace athena
{
namespace simd
{

namespace
{

/** forceBackend() override; -1 = none (use the env/CPU latch). */
std::atomic<int> forcedBackend{-1};

Backend
envLatchedBackend()
{
    static const Backend latched = resolve(
        parseRequest(std::getenv("ATHENA_SIMD")), avx2Available());
    return latched;
}

} // namespace

const char *
backendName(Backend b)
{
    return b == Backend::kAvx2 ? "avx2" : "scalar";
}

bool
avx2Available()
{
#if ATHENA_SIMD_X86
    static const bool avail = __builtin_cpu_supports("avx2");
    return avail;
#else
    return false;
#endif
}

Request
parseRequest(const char *value)
{
    if (!value || !*value)
        return Request::kAuto;
    if (std::strcmp(value, "scalar") == 0 ||
        std::strcmp(value, "0") == 0)
        return Request::kForceScalar;
    if (std::strcmp(value, "avx2") == 0)
        return Request::kForceAvx2;
    return Request::kAuto;
}

Backend
resolve(Request request, bool avx2_ok)
{
    switch (request) {
      case Request::kForceScalar:
        return Backend::kScalar;
      case Request::kForceAvx2:
      case Request::kAuto:
        break;
    }
    return avx2_ok ? Backend::kAvx2 : Backend::kScalar;
}

Backend
activeBackend()
{
    int forced = forcedBackend.load(std::memory_order_relaxed);
    if (forced >= 0)
        return static_cast<Backend>(forced);
    return envLatchedBackend();
}

void
forceBackend(Backend b)
{
    if (b == Backend::kAvx2 && !avx2Available())
        b = Backend::kScalar;
    forcedBackend.store(static_cast<int>(b),
                        std::memory_order_relaxed);
}

void
clearForcedBackend()
{
    forcedBackend.store(-1, std::memory_order_relaxed);
}

// --- scalar reference kernels (the PR 9 loops) --------------------

namespace
{

void
mix64BatchScalar(const std::uint64_t *in, unsigned n,
                 std::uint64_t *out)
{
    for (unsigned i = 0; i < n; ++i)
        out[i] = mix64(in[i]);
}

void
keyedHashMaskBatchScalar(const std::uint32_t *xs, unsigned n,
                         std::uint64_t key, std::uint32_t mask,
                         std::uint32_t *rows_out)
{
    for (unsigned i = 0; i < n; ++i)
        rows_out[i] =
            static_cast<std::uint32_t>(keyedHash(xs[i], key)) & mask;
}

void
popetPureIndicesBatchScalar(const std::uint64_t *pcs,
                            const std::uint64_t *addrs, unsigned n,
                            std::uint32_t table_mask,
                            std::uint16_t *idx)
{
    for (unsigned i = 0; i < n; ++i) {
        std::uint64_t pc = pcs[i];
        std::uint64_t addr = addrs[i];
        unsigned line_off = pageLineOffset(addr);
        unsigned byte_off =
            static_cast<unsigned>(addr & (kLineBytes - 1));
        std::uint64_t page = pageNumber(addr);
        std::uint64_t term =
            0x9e3779b97f4a7c15ull + (pc << 6) + (pc >> 2);
        std::uint16_t *out = idx + i * 4;
        out[0] = static_cast<std::uint16_t>(mix64(pc) & table_mask);
        out[1] = static_cast<std::uint16_t>(
            mix64(pc ^ (line_off + term)) & table_mask);
        out[2] = static_cast<std::uint16_t>(
            mix64(pc ^ (byte_off + term)) & table_mask);
        out[3] =
            static_cast<std::uint16_t>(mix64(page) & table_mask);
    }
}

void
deltaSeqFoldBatchScalar(const std::uint32_t *keys, unsigned n,
                        std::uint64_t *out)
{
    for (unsigned i = 0; i < n; ++i) {
        std::uint64_t seq = 0;
        for (int shift = 24; shift >= 0; shift -= 8) {
            auto d = static_cast<std::int8_t>((keys[i] >> shift) &
                                              0xffu);
            seq = hashCombine(seq,
                              static_cast<std::uint64_t>(
                                  static_cast<std::int64_t>(d)));
        }
        out[i] = seq;
    }
}

void
accumulateRowsF64Scalar(const double *plane,
                        const std::uint32_t *rows, unsigned n,
                        unsigned actions, double *q_out)
{
    for (unsigned i = 0; i < n; ++i) {
        const double *row =
            plane + static_cast<std::size_t>(rows[i]) * actions;
        double *q = q_out + static_cast<std::size_t>(i) * actions;
        for (unsigned a = 0; a < actions; ++a)
            q[a] += row[a];
    }
}

void
accumulateRowsI8Scalar(const std::int8_t *plane,
                       const std::uint32_t *rows, unsigned n,
                       unsigned actions, double scale,
                       double *q_out)
{
    for (unsigned i = 0; i < n; ++i) {
        const std::int8_t *row =
            plane + static_cast<std::size_t>(rows[i]) * actions;
        double *q = q_out + static_cast<std::size_t>(i) * actions;
        for (unsigned a = 0; a < actions; ++a)
            q[a] += static_cast<double>(row[a]) / scale;
    }
}

unsigned
scanStridedByteEqScalar(const unsigned char *base, unsigned stride,
                        unsigned pos, unsigned end,
                        unsigned char value)
{
    while (pos < end &&
           base[static_cast<std::size_t>(pos) * stride] != value)
        ++pos;
    return pos;
}

unsigned
collectStridedByteEqScalar(const unsigned char *base,
                           unsigned stride, unsigned *pos,
                           unsigned end, unsigned char value,
                           std::uint16_t *out, unsigned max_out)
{
    unsigned p = *pos;
    unsigned cnt = 0;
    // Branchless accept: always store the candidate, advance the
    // count only on a match. At the record window's load densities
    // (~30-50%) the accept branch is unpredictable, and the
    // mispredict tax dominated the plane's discovery pass; the
    // unconditional store is safe because cnt < max_out holds at
    // every store and callers size out[] for max_out entries
    // (out[cnt] past the returned count is scratch, never read).
    while (cnt < max_out && p < end) {
        out[cnt] = static_cast<std::uint16_t>(p);
        cnt += (base[static_cast<std::size_t>(p) * stride] == value);
        ++p;
    }
    *pos = p;
    return cnt;
}

} // namespace

// --- AVX2 kernels -------------------------------------------------

#if ATHENA_SIMD_X86

#define ATHENA_TARGET_AVX2 __attribute__((target("avx2")))

namespace
{

/**
 * Exact 64-bit lane-wise multiply (AVX2 has no _mm256_mullo_epi64):
 * lo64(a * b) = lo32(a)*lo32(b) + ((lo32(a)*hi32(b) +
 * hi32(a)*lo32(b)) << 32), all mod 2^64.
 */
ATHENA_TARGET_AVX2 inline __m256i
mullo64(__m256i a, __m256i b)
{
    __m256i lo = _mm256_mul_epu32(a, b);
    __m256i cross =
        _mm256_add_epi64(_mm256_mul_epu32(_mm256_srli_epi64(a, 32), b),
                         _mm256_mul_epu32(a, _mm256_srli_epi64(b, 32)));
    return _mm256_add_epi64(lo, _mm256_slli_epi64(cross, 32));
}

/** mix64 over four lanes. */
ATHENA_TARGET_AVX2 inline __m256i
mix64v(__m256i x)
{
    const __m256i m1 = _mm256_set1_epi64x(
        static_cast<long long>(0xff51afd7ed558ccdull));
    const __m256i m2 = _mm256_set1_epi64x(
        static_cast<long long>(0xc4ceb9fe1a85ec53ull));
    x = _mm256_xor_si256(x, _mm256_srli_epi64(x, 33));
    x = mullo64(x, m1);
    x = _mm256_xor_si256(x, _mm256_srli_epi64(x, 33));
    x = mullo64(x, m2);
    return _mm256_xor_si256(x, _mm256_srli_epi64(x, 33));
}

/** hashCombine over four lanes. */
ATHENA_TARGET_AVX2 inline __m256i
hashCombineV(__m256i a, __m256i b)
{
    const __m256i phi = _mm256_set1_epi64x(
        static_cast<long long>(0x9e3779b97f4a7c15ull));
    __m256i t = _mm256_add_epi64(b, phi);
    t = _mm256_add_epi64(t, _mm256_slli_epi64(a, 6));
    t = _mm256_add_epi64(t, _mm256_srli_epi64(a, 2));
    return mix64v(_mm256_xor_si256(a, t));
}

ATHENA_TARGET_AVX2 void
mix64BatchAvx2(const std::uint64_t *in, unsigned n,
               std::uint64_t *out)
{
    unsigned i = 0;
    for (; i + 4 <= n; i += 4) {
        __m256i x = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(in + i));
        _mm256_storeu_si256(reinterpret_cast<__m256i *>(out + i),
                            mix64v(x));
    }
    mix64BatchScalar(in + i, n - i, out + i);
}

ATHENA_TARGET_AVX2 void
keyedHashMaskBatchAvx2(const std::uint32_t *xs, unsigned n,
                       std::uint64_t key, std::uint32_t mask,
                       std::uint32_t *rows_out)
{
    const __m256i mul = _mm256_set1_epi64x(
        static_cast<long long>(2 * key + 1));
    const __m256i add = _mm256_set1_epi64x(
        static_cast<long long>(0x632be59bd9b4e019ull * (key + 1)));
    const __m256i maskv =
        _mm256_set1_epi64x(static_cast<long long>(mask));
    unsigned i = 0;
    for (; i + 4 <= n; i += 4) {
        __m256i x = _mm256_cvtepu32_epi64(_mm_loadu_si128(
            reinterpret_cast<const __m128i *>(xs + i)));
        x = _mm256_add_epi64(mullo64(x, mul), add);
        x = _mm256_and_si256(mix64v(x), maskv);
        alignas(32) std::uint64_t lanes[4];
        _mm256_store_si256(reinterpret_cast<__m256i *>(lanes), x);
        for (unsigned j = 0; j < 4; ++j)
            rows_out[i + j] = static_cast<std::uint32_t>(lanes[j]);
    }
    keyedHashMaskBatchScalar(xs + i, n - i, key, mask, rows_out + i);
}

ATHENA_TARGET_AVX2 void
popetPureIndicesBatchAvx2(const std::uint64_t *pcs,
                          const std::uint64_t *addrs, unsigned n,
                          std::uint32_t table_mask,
                          std::uint16_t *idx)
{
    const __m256i tm =
        _mm256_set1_epi64x(static_cast<long long>(table_mask));
    const __m256i phi = _mm256_set1_epi64x(
        static_cast<long long>(0x9e3779b97f4a7c15ull));
    const __m256i line_mask =
        _mm256_set1_epi64x(kLinesPerPage - 1);
    const __m256i byte_mask = _mm256_set1_epi64x(kLineBytes - 1);
    unsigned i = 0;
    for (; i + 4 <= n; i += 4) {
        __m256i pc = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(pcs + i));
        __m256i ad = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(addrs + i));
        __m256i line_off = _mm256_and_si256(
            _mm256_srli_epi64(ad, kLineShift), line_mask);
        __m256i byte_off = _mm256_and_si256(ad, byte_mask);
        __m256i page = _mm256_srli_epi64(ad, kPageShift);
        __m256i term = _mm256_add_epi64(
            phi, _mm256_add_epi64(_mm256_slli_epi64(pc, 6),
                                  _mm256_srli_epi64(pc, 2)));
        alignas(32) std::uint64_t f[4][4];
        _mm256_store_si256(
            reinterpret_cast<__m256i *>(f[0]),
            _mm256_and_si256(mix64v(pc), tm));
        _mm256_store_si256(
            reinterpret_cast<__m256i *>(f[1]),
            _mm256_and_si256(
                mix64v(_mm256_xor_si256(
                    pc, _mm256_add_epi64(line_off, term))),
                tm));
        _mm256_store_si256(
            reinterpret_cast<__m256i *>(f[2]),
            _mm256_and_si256(
                mix64v(_mm256_xor_si256(
                    pc, _mm256_add_epi64(byte_off, term))),
                tm));
        _mm256_store_si256(
            reinterpret_cast<__m256i *>(f[3]),
            _mm256_and_si256(mix64v(page), tm));
        for (unsigned j = 0; j < 4; ++j) {
            std::uint16_t *out = idx + (i + j) * 4;
            out[0] = static_cast<std::uint16_t>(f[0][j]);
            out[1] = static_cast<std::uint16_t>(f[1][j]);
            out[2] = static_cast<std::uint16_t>(f[2][j]);
            out[3] = static_cast<std::uint16_t>(f[3][j]);
        }
    }
    popetPureIndicesBatchScalar(pcs + i, addrs + i, n - i,
                                table_mask, idx + i * 4);
}

ATHENA_TARGET_AVX2 void
deltaSeqFoldBatchAvx2(const std::uint32_t *keys, unsigned n,
                      std::uint64_t *out)
{
    const __m256i byte_mask = _mm256_set1_epi64x(0xff);
    const __m256i sign_bit = _mm256_set1_epi64x(0x80);
    unsigned i = 0;
    for (; i + 4 <= n; i += 4) {
        __m256i key = _mm256_cvtepu32_epi64(_mm_loadu_si128(
            reinterpret_cast<const __m128i *>(keys + i)));
        __m256i seq = _mm256_setzero_si256();
        for (int shift = 24; shift >= 0; shift -= 8) {
            __m256i d = _mm256_and_si256(
                _mm256_srli_epi64(key, shift), byte_mask);
            // Sign-extend the int8 lane to 64 bits:
            // (v ^ 0x80) - 0x80.
            d = _mm256_sub_epi64(_mm256_xor_si256(d, sign_bit),
                                 sign_bit);
            seq = hashCombineV(seq, d);
        }
        _mm256_storeu_si256(reinterpret_cast<__m256i *>(out + i),
                            seq);
    }
    deltaSeqFoldBatchScalar(keys + i, n - i, out + i);
}

ATHENA_TARGET_AVX2 void
accumulateRowsF64Avx2(const double *plane,
                      const std::uint32_t *rows, unsigned n,
                      unsigned actions, double *q_out)
{
    for (unsigned i = 0; i < n; ++i) {
        const double *row =
            plane + static_cast<std::size_t>(rows[i]) * actions;
        double *q = q_out + static_cast<std::size_t>(i) * actions;
        unsigned a = 0;
        for (; a + 4 <= actions; a += 4) {
            _mm256_storeu_pd(
                q + a, _mm256_add_pd(_mm256_loadu_pd(q + a),
                                     _mm256_loadu_pd(row + a)));
        }
        for (; a < actions; ++a)
            q[a] += row[a];
    }
}

ATHENA_TARGET_AVX2 void
accumulateRowsI8Avx2(const std::int8_t *plane,
                     const std::uint32_t *rows, unsigned n,
                     unsigned actions, double scale, double *q_out)
{
    const __m256d scalev = _mm256_set1_pd(scale);
    for (unsigned i = 0; i < n; ++i) {
        const std::int8_t *row =
            plane + static_cast<std::size_t>(rows[i]) * actions;
        double *q = q_out + static_cast<std::size_t>(i) * actions;
        unsigned a = 0;
        for (; a + 4 <= actions; a += 4) {
            std::int32_t word;
            std::memcpy(&word, row + a, sizeof(word));
            __m256d v = _mm256_div_pd(
                _mm256_cvtepi32_pd(
                    _mm_cvtepi8_epi32(_mm_cvtsi32_si128(word))),
                scalev);
            _mm256_storeu_pd(
                q + a, _mm256_add_pd(_mm256_loadu_pd(q + a), v));
        }
        for (; a < actions; ++a)
            q[a] += static_cast<double>(row[a]) / scale;
    }
}

ATHENA_TARGET_AVX2 inline unsigned
gatherByteEqMask(const unsigned char *base, unsigned stride,
                 unsigned pos, unsigned char value)
{
    const __m256i lane_idx =
        _mm256_setr_epi32(0, 1, 2, 3, 4, 5, 6, 7);
    __m256i off = _mm256_mullo_epi32(
        _mm256_add_epi32(_mm256_set1_epi32(
                             static_cast<int>(pos)),
                         lane_idx),
        _mm256_set1_epi32(static_cast<int>(stride)));
    __m256i g = _mm256_i32gather_epi32(
        reinterpret_cast<const int *>(base), off, 1);
    __m256i eq = _mm256_cmpeq_epi32(
        _mm256_and_si256(g, _mm256_set1_epi32(0xff)),
        _mm256_set1_epi32(value));
    return static_cast<unsigned>(
        _mm256_movemask_ps(_mm256_castsi256_ps(eq)));
}

ATHENA_TARGET_AVX2 unsigned
scanStridedByteEqAvx2(const unsigned char *base, unsigned stride,
                      unsigned pos, unsigned end,
                      unsigned char value)
{
    while (pos + 8 <= end) {
        unsigned mask = gatherByteEqMask(base, stride, pos, value);
        if (mask)
            return pos + static_cast<unsigned>(
                             __builtin_ctz(mask));
        pos += 8;
    }
    return scanStridedByteEqScalar(base, stride, pos, end, value);
}

ATHENA_TARGET_AVX2 unsigned
collectStridedByteEqAvx2(const unsigned char *base, unsigned stride,
                         unsigned *pos, unsigned end,
                         unsigned char value, std::uint16_t *out,
                         unsigned max_out)
{
    unsigned p = *pos;
    unsigned cnt = 0;
    while (cnt < max_out && p + 8 <= end) {
        unsigned mask = gatherByteEqMask(base, stride, p, value);
        unsigned consumed = 8;
        while (mask) {
            unsigned bit =
                static_cast<unsigned>(__builtin_ctz(mask));
            out[cnt++] = static_cast<std::uint16_t>(p + bit);
            mask &= mask - 1;
            if (cnt == max_out) {
                // Quota filled mid-span: stop exactly past the
                // accepting index, like the scalar loop, so any
                // remaining matches are re-examined later.
                consumed = bit + 1;
                break;
            }
        }
        p += consumed;
    }
    *pos = p;
    return cnt + collectStridedByteEqScalar(base, stride, pos, end,
                                            value, out + cnt,
                                            max_out - cnt);
}

} // namespace

#endif // ATHENA_SIMD_X86

// --- dispatch shims -----------------------------------------------

void
mix64Batch(Backend b, const std::uint64_t *in, unsigned n,
           std::uint64_t *out)
{
#if ATHENA_SIMD_X86
    if (b == Backend::kAvx2) {
        mix64BatchAvx2(in, n, out);
        return;
    }
#endif
    (void)b;
    mix64BatchScalar(in, n, out);
}

void
keyedHashMaskBatch(Backend b, const std::uint32_t *xs, unsigned n,
                   std::uint64_t key, std::uint32_t mask,
                   std::uint32_t *rows_out)
{
#if ATHENA_SIMD_X86
    if (b == Backend::kAvx2) {
        keyedHashMaskBatchAvx2(xs, n, key, mask, rows_out);
        return;
    }
#endif
    (void)b;
    keyedHashMaskBatchScalar(xs, n, key, mask, rows_out);
}

void
popetPureIndicesBatch(Backend b, const std::uint64_t *pcs,
                      const std::uint64_t *addrs, unsigned n,
                      std::uint32_t table_mask, std::uint16_t *idx)
{
#if ATHENA_SIMD_X86
    if (b == Backend::kAvx2) {
        popetPureIndicesBatchAvx2(pcs, addrs, n, table_mask, idx);
        return;
    }
#endif
    (void)b;
    popetPureIndicesBatchScalar(pcs, addrs, n, table_mask, idx);
}

void
deltaSeqFoldBatch(Backend b, const std::uint32_t *keys, unsigned n,
                  std::uint64_t *out)
{
#if ATHENA_SIMD_X86
    if (b == Backend::kAvx2) {
        deltaSeqFoldBatchAvx2(keys, n, out);
        return;
    }
#endif
    (void)b;
    deltaSeqFoldBatchScalar(keys, n, out);
}

void
accumulateRowsF64(Backend b, const double *plane,
                  const std::uint32_t *rows, unsigned n,
                  unsigned actions, double *q_out)
{
#if ATHENA_SIMD_X86
    if (b == Backend::kAvx2) {
        accumulateRowsF64Avx2(plane, rows, n, actions, q_out);
        return;
    }
#endif
    (void)b;
    accumulateRowsF64Scalar(plane, rows, n, actions, q_out);
}

void
accumulateRowsI8(Backend b, const std::int8_t *plane,
                 const std::uint32_t *rows, unsigned n,
                 unsigned actions, double scale, double *q_out)
{
#if ATHENA_SIMD_X86
    if (b == Backend::kAvx2) {
        accumulateRowsI8Avx2(plane, rows, n, actions, scale, q_out);
        return;
    }
#endif
    (void)b;
    accumulateRowsI8Scalar(plane, rows, n, actions, scale, q_out);
}

unsigned
scanStridedByteEq(Backend b, const unsigned char *base,
                  unsigned stride, unsigned pos, unsigned end,
                  unsigned char value)
{
#if ATHENA_SIMD_X86
    if (b == Backend::kAvx2)
        return scanStridedByteEqAvx2(base, stride, pos, end, value);
#endif
    (void)b;
    return scanStridedByteEqScalar(base, stride, pos, end, value);
}

unsigned
collectStridedByteEq(Backend b, const unsigned char *base,
                     unsigned stride, unsigned *pos, unsigned end,
                     unsigned char value, std::uint16_t *out,
                     unsigned max_out)
{
#if ATHENA_SIMD_X86
    if (b == Backend::kAvx2)
        return collectStridedByteEqAvx2(base, stride, pos, end,
                                        value, out, max_out);
#endif
    (void)b;
    return collectStridedByteEqScalar(base, stride, pos, end, value,
                                      out, max_out);
}

} // namespace simd
} // namespace athena

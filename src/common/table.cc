/**
 * @file
 * TextTable implementation.
 */

#include "common/table.hh"

#include <algorithm>
#include <cstddef>
#include <iomanip>
#include <sstream>
#include <string>
#include <vector>

namespace athena
{

void
TextTable::addRow(std::vector<std::string> cells)
{
    rows.push_back(std::move(cells));
}

std::string
TextTable::num(double v, int precision)
{
    std::ostringstream os;
    os << std::fixed << std::setprecision(precision) << v;
    return os.str();
}

void
TextTable::print(std::ostream &os) const
{
    if (!title.empty())
        os << "== " << title << " ==\n";
    if (rows.empty())
        return;

    std::vector<std::size_t> widths;
    for (const auto &row : rows) {
        if (widths.size() < row.size())
            widths.resize(row.size(), 0);
        for (std::size_t c = 0; c < row.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());
    }

    auto print_row = [&](const std::vector<std::string> &row) {
        for (std::size_t c = 0; c < row.size(); ++c) {
            os << std::left << std::setw(static_cast<int>(widths[c]) + 2)
               << row[c];
        }
        os << "\n";
    };

    print_row(rows.front());
    std::size_t total = 0;
    for (auto w : widths)
        total += w + 2;
    os << std::string(total, '-') << "\n";
    for (std::size_t r = 1; r < rows.size(); ++r)
        print_row(rows[r]);
}

} // namespace athena

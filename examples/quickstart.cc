/**
 * @file
 * Quickstart: build a CD1 system (POPET OCP + Pythia L2 prefetcher,
 * 3.2 GB/s DRAM), run one prefetcher-adverse and one
 * prefetcher-friendly workload under the Naive combination and
 * under Athena, and print the speedups over the no-speculation
 * baseline.
 *
 * Build & run:
 *   cmake -B build -G Ninja && cmake --build build
 *   ./build/examples/quickstart
 */

#include <iostream>

#include "common/table.hh"
#include "sim/runner.hh"

using namespace athena;

int
main()
{
    ExperimentRunner runner;
    auto workloads = evalWorkloads();

    const WorkloadSpec &adverse =
        findWorkload(workloads, "605.mcf_s-1554B");
    const WorkloadSpec &friendly =
        findWorkload(workloads, "462.libquantum-714B");

    TextTable table("quickstart: CD1 (POPET + Pythia) @ 3.2 GB/s");
    table.addRow({"workload", "naive", "athena"});

    for (const WorkloadSpec *spec : {&adverse, &friendly}) {
        SystemConfig naive =
            makeDesignConfig(CacheDesign::kCd1, PolicyKind::kNaive);
        SystemConfig with_athena =
            makeDesignConfig(CacheDesign::kCd1, PolicyKind::kAthena);

        double base = runner.baselineIpc(naive, *spec);
        double naive_ipc = runner.runOne(naive, *spec).ipc();
        double athena_ipc = runner.runOne(with_athena, *spec).ipc();

        table.addRow({spec->name, TextTable::num(naive_ipc / base),
                      TextTable::num(athena_ipc / base)});
    }
    table.print(std::cout);

    std::cout << "\nSpeedups are relative to the same system with "
                 "no prefetching and no off-chip prediction.\n";
    return 0;
}

/**
 * @file
 * Example: the bandwidth story of the paper in one program.
 *
 * Sweeps the per-core DRAM bandwidth for a single workload and
 * shows how the best static combination flips from "nothing /
 * OCP-only" in bandwidth-starved systems to "everything on" in
 * bandwidth-rich ones — and how Athena tracks the winner at every
 * point (the Fig. 14 / Fig. 17 mechanism, on one workload).
 *
 * Usage: bandwidth_sweep [workload-name]
 */

#include <iostream>
#include <string>
#include <vector>

#include "common/table.hh"
#include "sim/runner.hh"

using namespace athena;

int
main(int argc, char **argv)
{
    std::string workload_name =
        argc > 1 ? argv[1] : "compute_fp_78";

    ExperimentRunner runner;
    auto workloads = evalWorkloads();
    const WorkloadSpec &spec = findWorkload(workloads, workload_name);

    TextTable table("bandwidth_sweep: " + workload_name +
                    " (speedup over no-pf/no-OCP at each point)");
    table.addRow({"GB/s", "ocp_only", "pf_only", "naive", "athena"});

    for (double bw : {1.6, 3.2, 6.4, 12.8, 25.6}) {
        std::vector<std::string> row = {TextTable::num(bw, 1)};
        for (PolicyKind policy :
             {PolicyKind::kOcpOnly, PolicyKind::kPfOnly,
              PolicyKind::kNaive, PolicyKind::kAthena}) {
            SystemConfig cfg =
                makeDesignConfig(CacheDesign::kCd1, policy);
            cfg.bandwidthGBps = bw;
            double base = runner.baselineIpc(cfg, spec);
            double s = runner.runOne(cfg, spec).ipc() / base;
            row.push_back(TextTable::num(s));
        }
        table.addRow(std::move(row));
    }
    table.print(std::cout);

    std::cout << "\nExpected shape: pf_only/naive grow with "
                 "bandwidth; athena tracks the per-point winner.\n";
    return 0;
}

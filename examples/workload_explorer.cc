/**
 * @file
 * Workload explorer: dump the memory-system diagnostics of any
 * workload under any policy — IPC, MPKI, prefetch accuracy, OCP
 * accuracy, DRAM traffic mix and bus utilization. This is the tool
 * to understand *why* a workload is prefetcher-adverse or
 * -friendly.
 *
 * Usage: workload_explorer [workload-name] [policy] [bandwidth]
 *   policy: alloff | naive | pf_only | ocp_only | tlp | hpac |
 *           mab | athena
 */

#include <cstdint>
#include <cstdlib>
#include <iostream>
#include <string>

#include "common/table.hh"
#include "sim/runner.hh"

using namespace athena;

namespace
{

PolicyKind
parsePolicy(const std::string &name)
{
    if (name == "alloff") return PolicyKind::kAllOff;
    if (name == "naive") return PolicyKind::kNaive;
    if (name == "pf_only") return PolicyKind::kPfOnly;
    if (name == "ocp_only") return PolicyKind::kOcpOnly;
    if (name == "tlp") return PolicyKind::kTlp;
    if (name == "hpac") return PolicyKind::kHpac;
    if (name == "mab") return PolicyKind::kMab;
    if (name == "athena") return PolicyKind::kAthena;
    std::cerr << "unknown policy " << name << ", using naive\n";
    return PolicyKind::kNaive;
}

} // namespace

int
main(int argc, char **argv)
{
    std::string workload_name =
        argc > 1 ? argv[1] : "605.mcf_s-1554B";
    PolicyKind policy =
        parsePolicy(argc > 2 ? argv[2] : "naive");
    double bandwidth = argc > 3 ? std::atof(argv[3]) : 3.2;

    ExperimentRunner runner;
    auto workloads = evalWorkloads();
    const WorkloadSpec &spec = findWorkload(workloads, workload_name);

    SystemConfig cfg = makeDesignConfig(CacheDesign::kCd1, policy);
    cfg.bandwidthGBps = bandwidth;

    double base = runner.baselineIpc(cfg, spec);
    SimResult res = runner.runOne(cfg, spec);
    const auto &core = res.cores[0];

    TextTable t("workload_explorer: " + workload_name + " / " +
                policyKindName(policy) + " @ " +
                TextTable::num(bandwidth, 1) + " GB/s");
    t.addRow({"metric", "value"});
    t.addRow({"IPC", TextTable::num(core.ipc)});
    t.addRow({"baseline IPC", TextTable::num(base)});
    t.addRow({"speedup", TextTable::num(core.ipc / base)});
    t.addRow({"LLC MPKI",
              TextTable::num(1000.0 * core.llcMisses /
                             core.instructions, 2)});
    t.addRow({"avg LLC miss latency",
              TextTable::num(core.avgLlcMissLatency(), 1)});
    t.addRow({"bus utilization", TextTable::num(res.busUtilization)});
    t.addRow({"DRAM demand", std::to_string(res.dram.demandRequests)});
    t.addRow({"DRAM prefetch",
              std::to_string(res.dram.prefetchRequests)});
    t.addRow({"DRAM ocp", std::to_string(res.dram.ocpRequests)});
    for (unsigned s = 0; s < kMaxPrefetchers; ++s) {
        if (core.pf[s].issued == 0)
            continue;
        t.addRow({"pf" + std::to_string(s) + " issued",
                  std::to_string(core.pf[s].issued)});
        t.addRow({"pf" + std::to_string(s) + " accuracy",
                  TextTable::num(core.pf[s].accuracy())});
    }
    t.addRow({"OCP predictions", std::to_string(core.ocpPredictions)});
    t.addRow({"OCP accuracy", TextTable::num(core.ocpAccuracy())});
    t.addRow({"branch mispredicts/KI",
              TextTable::num(1000.0 * core.branchMispredicts /
                             core.instructions, 2)});
    if (policy == PolicyKind::kAthena) {
        const char *labels[4] = {"none", "ocp", "pf", "both"};
        std::uint64_t total = 0;
        for (auto v : core.actionHistogram)
            total += v;
        for (unsigned a = 0; a < 4; ++a) {
            t.addRow({std::string("action ") + labels[a],
                      TextTable::num(total ? 100.0 *
                                                 core.actionHistogram
                                                     [a] / total
                                           : 0.0, 1) + "%"});
        }
    }
    t.print(std::cout);
    return 0;
}

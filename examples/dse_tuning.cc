/**
 * @file
 * Design-space exploration (paper section 5.3): grid-search
 * Athena's hyperparameters on the 20-workload tuning set — which is
 * disjoint from the 100 evaluation workloads, exactly as in the
 * paper's methodology — and report the best configuration.
 *
 * The default grid is deliberately coarse so the tool finishes in
 * minutes; densify via the constants below or sharpen per-point
 * fidelity with ATHENA_SIM_INSTR. The shipped defaults in
 * AthenaConfig/QVStoreParams are the outcome of running this
 * search on this substrate (DESIGN.md section 5a).
 *
 * Usage: dse_tuning [epochs|reward|rl]
 *   epochs: sweep the epoch length
 *   reward: sweep lambda_cycle x lambda_MBr
 *   rl:     sweep alpha x gamma (default)
 */

#include <cstdint>
#include <iostream>
#include <string>
#include <vector>

#include "common/table.hh"
#include "sim/runner.hh"

using namespace athena;

namespace
{

/** Geomean speedup of a config over the tuning set. */
double
tuningScore(ExperimentRunner &runner, const SystemConfig &cfg)
{
    static const auto tuning = tuningWorkloads();
    auto rows = runner.speedups(
        const_cast<SystemConfig &>(cfg), tuning);
    return ExperimentRunner::summarize(rows, {}).overall;
}

SystemConfig
baseConfig()
{
    return makeDesignConfig(CacheDesign::kCd1, PolicyKind::kAthena);
}

void
sweepRl(ExperimentRunner &runner)
{
    TextTable t("DSE: alpha x gamma on the tuning set "
                "(geomean speedup)");
    t.addRow({"alpha\\gamma", "0.2", "0.6", "0.9"});
    for (double alpha : {0.2, 0.6, 0.9}) {
        std::vector<std::string> row = {TextTable::num(alpha, 1)};
        for (double gamma : {0.2, 0.6, 0.9}) {
            SystemConfig cfg = baseConfig();
            cfg.athena.qv.alpha = alpha;
            cfg.athena.qv.gamma = gamma;
            row.push_back(
                TextTable::num(tuningScore(runner, cfg)));
        }
        t.addRow(std::move(row));
    }
    t.print(std::cout);
}

void
sweepReward(ExperimentRunner &runner)
{
    TextTable t("DSE: lambda_cycle x lambda_MBr on the tuning set");
    t.addRow({"cyc\\mbr", "0.0", "1.0", "2.0"});
    for (double lc : {0.8, 1.6, 2.0}) {
        std::vector<std::string> row = {TextTable::num(lc, 1)};
        for (double lm : {0.0, 1.0, 2.0}) {
            SystemConfig cfg = baseConfig();
            cfg.athena.rewardWeights.lambdaCycle = lc;
            cfg.athena.rewardWeights.lambdaMispredBranch = lm;
            row.push_back(
                TextTable::num(tuningScore(runner, cfg)));
        }
        t.addRow(std::move(row));
    }
    t.print(std::cout);
}

void
sweepEpochs(ExperimentRunner &runner)
{
    TextTable t("DSE: epoch length on the tuning set");
    t.addRow({"epoch (instr)", "geomean speedup"});
    for (std::uint64_t epoch : {2000u, 4000u, 8000u, 16000u}) {
        SystemConfig cfg = baseConfig();
        cfg.epochInstructions = epoch;
        t.addRow({std::to_string(epoch),
                  TextTable::num(tuningScore(runner, cfg))});
    }
    t.print(std::cout);
}

} // namespace

int
main(int argc, char **argv)
{
    std::string mode = argc > 1 ? argv[1] : "rl";
    ExperimentRunner runner;
    if (mode == "epochs")
        sweepEpochs(runner);
    else if (mode == "reward")
        sweepReward(runner);
    else
        sweepRl(runner);
    std::cout << "\nNote: scored on the 20 tuning workloads only; "
                 "the 100 evaluation workloads never participate in "
                 "tuning (paper section 5.3).\n";
    return 0;
}

/**
 * @file
 * Example: writing a custom coordination policy against the
 * CoordinationPolicy interface.
 *
 * The interface is the extension point the paper's conclusion
 * gestures at ("we hope Athena and its novel reward policy would
 * inspire future works on data-driven coordination policy
 * design"). This example implements a tiny hysteresis policy —
 * enable the prefetcher only while its measured accuracy stays
 * above a threshold — and exercises it against a synthetic
 * epoch-stats environment side by side with a fresh AthenaAgent,
 * printing which combination each policy settles on.
 */

#include <array>
#include <cstddef>
#include <cstdint>
#include <iostream>
#include <string>

#include "athena/agent.hh"
#include "common/table.hh"
#include "coord/policy.hh"

using namespace athena;

namespace
{

/** Enable the prefetcher only while it proves itself accurate. */
class AccuracyGatePolicy : public CoordinationPolicy
{
  public:
    const char *name() const override { return "accuracy_gate"; }

    CoordDecision
    onEpochEnd(const EpochStats &stats) override
    {
        std::uint64_t issued = 0, used = 0;
        for (unsigned s = 0; s < kMaxPrefetchers; ++s) {
            issued += stats.pfIssued[s];
            used += stats.pfUsed[s];
        }
        if (issued > 16) {
            pfOn = static_cast<double>(used) /
                       static_cast<double>(issued) >
                   0.45;
            probeCountdown = 32;
        } else if (!pfOn && --probeCountdown <= 0) {
            pfOn = true; // probe to regain feedback
            probeCountdown = 32;
        }
        CoordDecision d;
        d.pfEnableMask = pfOn ? ~0u : 0u;
        d.ocpEnable = true;
        return d;
    }

    void
    reset() override
    {
        pfOn = true;
        probeCountdown = 32;
    }

    std::size_t storageBits() const override { return 64; }

  private:
    bool pfOn = true;
    int probeCountdown = 32;
};

/**
 * A miniature environment in the spirit of the simulator's epoch
 * loop: the chosen decision determines next epoch's stats.
 * `pf_accuracy` controls whether prefetching is worth it.
 */
EpochStats
environment(const CoordDecision &d, double pf_accuracy, int tick)
{
    bool pf = d.pfEnabled(0) && d.degreeScale[0] > 0.0;
    EpochStats s;
    s.instructions = 8000;
    double pf_effect = pf ? (pf_accuracy > 0.5 ? 0.70 : 1.25) : 1.0;
    double ocp_effect = d.ocpEnable ? 0.92 : 1.0;
    s.cycles = static_cast<std::uint64_t>(16000.0 * pf_effect *
                                          ocp_effect) +
               (tick * 31) % 150;
    s.loads = 2400;
    s.branches = 700;
    s.branchMispredicts = 25 + tick % 7;
    s.pfIssued[0] = pf ? 150 : 0;
    s.pfUsed[0] =
        pf ? static_cast<std::uint64_t>(150 * pf_accuracy) : 0;
    s.ocpPredictions = d.ocpEnable ? 80 : 0;
    s.ocpCorrect = d.ocpEnable ? 72 : 0;
    s.bandwidthUsage = pf ? 0.7 : 0.35;
    s.llcMisses = pf && pf_accuracy > 0.5 ? 20 : 80;
    s.llcMissLatency = s.llcMisses * 250;
    s.dramDemand = 60;
    s.dramPrefetch = pf ? 60 : 0;
    s.dramOcp = d.ocpEnable ? 20 : 0;
    return s;
}

std::string
runPolicy(CoordinationPolicy &policy, double pf_accuracy)
{
    CoordDecision d = policy.onEpochEnd(EpochStats{});
    std::array<unsigned, 4> combo_counts{};
    for (int t = 0; t < 400; ++t) {
        EpochStats stats = environment(d, pf_accuracy, t);
        d = policy.onEpochEnd(stats);
        if (t >= 200) {
            bool pf = d.pfEnabled(0) && d.degreeScale[0] > 0.0;
            ++combo_counts[(pf ? 2 : 0) | (d.ocpEnable ? 1 : 0)];
        }
    }
    const char *names[4] = {"none", "ocp", "pf", "both"};
    unsigned best = 0;
    for (unsigned i = 1; i < 4; ++i) {
        if (combo_counts[i] > combo_counts[best])
            best = i;
    }
    return std::string(names[best]) + " (" +
           TextTable::num(combo_counts[best] / 2.0, 0) + "%)";
}

} // namespace

int
main()
{
    TextTable table("custom_policy: converged combination per "
                    "policy (synthetic epoch environment)");
    table.addRow({"environment", "accuracy_gate", "athena"});

    for (double acc : {0.9, 0.2}) {
        AccuracyGatePolicy gate;
        AthenaAgent athena;
        std::string label = acc > 0.5
                                ? "accurate prefetcher"
                                : "inaccurate prefetcher";
        table.addRow({label, runPolicy(gate, acc),
                      runPolicy(athena, acc)});
    }
    table.print(std::cout);

    std::cout << "\nBoth policies should pick 'both' when the "
                 "prefetcher is accurate and 'ocp' when it is not; "
                 "Athena learns this from the reward alone, with no "
                 "hand-set threshold.\n";
    return 0;
}

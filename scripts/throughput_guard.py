#!/usr/bin/env python3
"""Throughput regression guard.

Compares a freshly measured BENCH_throughput.json against the
committed baseline and fails (exit 1) when aggregate accesses/sec
regressed by more than the allowed percentage.

Usage:
    throughput_guard.py BASELINE.json NEW.json [--max-regression-pct N]

Environment:
    ATHENA_REGRESSION_PCT   overrides the threshold (useful on noisy
                            shared CI runners; the committed baseline
                            is measured on a quiet box)
    ATHENA_SKIP_THROUGHPUT_GUARD=1   skips the check entirely

The committed baseline and the CI runner are different machines, so
the guard is a coarse parachute against order-of-magnitude
regressions (an accidentally quadratic loop, a debug build slipping
into Release), not a precision gate — precision comparisons are done
locally with the bench's interleaved A/B mode (ATHENA_AB_BASELINE).
"""

import argparse
import json
import os
import sys


def rate(doc: dict) -> float:
    return float(doc.get("accesses_per_sec", 0.0))


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("baseline")
    parser.add_argument("new")
    parser.add_argument("--max-regression-pct", type=float,
                        default=10.0)
    parser.add_argument(
        "--advisory", action="store_true",
        help="report the comparison but always exit 0 — for "
             "cross-machine comparisons (e.g. hosted CI runners vs "
             "a committed dev-box baseline) where absolute rates "
             "are not commensurable")
    args = parser.parse_args()
    advisory = (args.advisory or
                os.environ.get("ATHENA_GUARD_ADVISORY") == "1")

    if os.environ.get("ATHENA_SKIP_THROUGHPUT_GUARD") == "1":
        print("throughput_guard: skipped "
              "(ATHENA_SKIP_THROUGHPUT_GUARD=1)")
        return 0

    pct = args.max_regression_pct
    env_pct = os.environ.get("ATHENA_REGRESSION_PCT")
    if env_pct:
        pct = float(env_pct)

    with open(args.baseline) as f:
        base = json.load(f)
    with open(args.new) as f:
        new = json.load(f)

    base_rate, new_rate = rate(base), rate(new)
    if base_rate <= 0.0:
        print("throughput_guard: baseline has no accesses_per_sec; "
              "nothing to compare")
        return 0

    change = (new_rate / base_rate - 1.0) * 100.0
    floor = base_rate * (1.0 - pct / 100.0)
    print(f"throughput_guard: baseline {base_rate:,.0f} acc/s, "
          f"new {new_rate:,.0f} acc/s ({change:+.1f}%), "
          f"allowed regression {pct:.0f}%")

    # Per-case detail for the log (cases are matched by name; new
    # cases are informational only).
    base_cases = {c["name"]: c for c in base.get("cases", [])}
    for c in new.get("cases", []):
        b = base_cases.get(c["name"])
        if not b or not b.get("wall_seconds"):
            continue
        br = b["accesses"] / b["wall_seconds"]
        nr = c["accesses"] / c["wall_seconds"]
        print(f"  {c['name']}: {nr:,.0f} vs {br:,.0f} "
              f"({(nr / br - 1) * 100.0:+.1f}%)")

    if new_rate < floor:
        if advisory:
            print(f"throughput_guard: WARN (advisory) — regression "
                  f"exceeds {pct}% (floor {floor:,.0f} acc/s); not "
                  "failing because this comparison crosses machines")
            return 0
        print(f"throughput_guard: FAIL — regression exceeds {pct}% "
              f"(floor {floor:,.0f} acc/s). Override with "
              "ATHENA_REGRESSION_PCT for known-noisy runners.")
        return 1
    print("throughput_guard: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())

#!/usr/bin/env python3
"""Throughput regression guard.

Compares a freshly measured BENCH_throughput.json against the
committed baseline and fails (exit 1) when aggregate accesses/sec
regressed by more than the allowed percentage.

Usage:
    throughput_guard.py BASELINE.json NEW.json [--max-regression-pct N]
                        [--filter substr,substr,...]

When a filter is given (or the NEW json was produced by a filtered
bench run and only carries a case subset), the aggregate is
recomputed from the per-case sums restricted to cases present in
BOTH documents, so a filtered smoke run compares apples to apples
against the full committed baseline.

Environment:
    ATHENA_REGRESSION_PCT   overrides the threshold (useful on noisy
                            shared CI runners; the committed baseline
                            is measured on a quiet box)
    ATHENA_BENCH_FILTER     same comma-separated substring list the
                            bench accepts; applied as --filter when
                            the flag is absent, so the guard and the
                            bench run it checks share one knob
    ATHENA_SKIP_THROUGHPUT_GUARD=1   skips the check entirely

The committed baseline and the CI runner are different machines, so
the guard is a coarse parachute against order-of-magnitude
regressions (an accidentally quadratic loop, a debug build slipping
into Release), not a precision gate — precision comparisons are done
locally with the bench's interleaved A/B mode (ATHENA_AB_BASELINE).
"""

import argparse
import json
import os
import sys


def rate(doc: dict) -> float:
    return float(doc.get("accesses_per_sec", 0.0))


def case_matches(name: str, tokens: list) -> bool:
    return not tokens or any(t and t in name for t in tokens)


def subset_rate(doc: dict, names: set) -> float:
    """Aggregate accesses/sec over the named case subset."""
    acc = 0.0
    wall = 0.0
    for c in doc.get("cases", []):
        if c["name"] in names and c.get("wall_seconds"):
            acc += float(c["accesses"])
            wall += float(c["wall_seconds"])
    return acc / wall if wall > 0.0 else 0.0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("baseline")
    parser.add_argument("new")
    parser.add_argument("--max-regression-pct", type=float,
                        default=10.0)
    parser.add_argument(
        "--filter", default=os.environ.get("ATHENA_BENCH_FILTER", ""),
        help="comma-separated case-name substrings (the bench's "
             "ATHENA_BENCH_FILTER syntax); restricts the comparison "
             "to matching cases and recomputes the aggregate over "
             "the intersection")
    parser.add_argument(
        "--advisory", action="store_true",
        help="report the comparison but always exit 0 — for "
             "cross-machine comparisons (e.g. hosted CI runners vs "
             "a committed dev-box baseline) where absolute rates "
             "are not commensurable")
    args = parser.parse_args()
    advisory = (args.advisory or
                os.environ.get("ATHENA_GUARD_ADVISORY") == "1")

    if os.environ.get("ATHENA_SKIP_THROUGHPUT_GUARD") == "1":
        print("throughput_guard: skipped "
              "(ATHENA_SKIP_THROUGHPUT_GUARD=1)")
        return 0

    pct = args.max_regression_pct
    env_pct = os.environ.get("ATHENA_REGRESSION_PCT")
    if env_pct:
        pct = float(env_pct)

    with open(args.baseline) as f:
        base = json.load(f)
    with open(args.new) as f:
        new = json.load(f)

    tokens = [t.strip() for t in args.filter.split(",") if t.strip()]
    base_cases = {c["name"]: c for c in base.get("cases", [])}
    new_names = {c["name"] for c in new.get("cases", [])}
    common = {n for n in new_names
              if n in base_cases and case_matches(n, tokens)}

    if tokens or new_names != set(base_cases):
        # Filtered (or subset) run: compare only the intersection so
        # a smoke job measuring two cases is not judged against the
        # full 15-case baseline aggregate.
        if not common:
            print("throughput_guard: no common cases after filter "
                  f"{tokens}; nothing to compare")
            return 0
        base_rate = subset_rate(base, common)
        new_rate = subset_rate(new, common)
        print(f"throughput_guard: comparing case subset "
              f"{sorted(common)}")
    else:
        base_rate, new_rate = rate(base), rate(new)
    if base_rate <= 0.0:
        print("throughput_guard: baseline has no accesses_per_sec; "
              "nothing to compare")
        return 0

    change = (new_rate / base_rate - 1.0) * 100.0
    floor = base_rate * (1.0 - pct / 100.0)
    print(f"throughput_guard: baseline {base_rate:,.0f} acc/s, "
          f"new {new_rate:,.0f} acc/s ({change:+.1f}%), "
          f"allowed regression {pct:.0f}%")

    # Per-case detail for the log (cases are matched by name; new
    # cases are informational only).
    for c in new.get("cases", []):
        b = base_cases.get(c["name"])
        if not b or not b.get("wall_seconds"):
            continue
        if not case_matches(c["name"], tokens):
            continue
        br = b["accesses"] / b["wall_seconds"]
        nr = c["accesses"] / c["wall_seconds"]
        print(f"  {c['name']}: {nr:,.0f} vs {br:,.0f} "
              f"({(nr / br - 1) * 100.0:+.1f}%)")

    if new_rate < floor:
        if advisory:
            print(f"throughput_guard: WARN (advisory) — regression "
                  f"exceeds {pct}% (floor {floor:,.0f} acc/s); not "
                  "failing because this comparison crosses machines")
            return 0
        print(f"throughput_guard: FAIL — regression exceeds {pct}% "
              f"(floor {floor:,.0f} acc/s). Override with "
              "ATHENA_REGRESSION_PCT for known-noisy runners.")
        return 1
    print("throughput_guard: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())

#!/usr/bin/env bash
# Local mirror of the tier-1 verify line (and what CI runs):
# configure, build everything, run the full test fleet, then a
# short-horizon throughput smoke that writes BENCH_throughput.json.
#
# Usage: scripts/check.sh [build-dir]
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build}"

cmake -B "$BUILD_DIR" -S .
cmake --build "$BUILD_DIR" -j
ctest --test-dir "$BUILD_DIR" --output-on-failure -j "$(nproc)"

ATHENA_SIM_INSTR="${ATHENA_SIM_INSTR:-200000}" \
ATHENA_WARMUP_INSTR="${ATHENA_WARMUP_INSTR:-20000}" \
ATHENA_BENCH_REPEATS="${ATHENA_BENCH_REPEATS:-1}" \
    "$BUILD_DIR"/bench_throughput BENCH_throughput.smoke.json

# Coarse local guard against large regressions; the committed
# baseline was measured at full fidelity on a quiet box, so the
# smoke comparison gets a wide threshold (override via
# ATHENA_REGRESSION_PCT, skip via ATHENA_SKIP_THROUGHPUT_GUARD=1).
ATHENA_REGRESSION_PCT="${ATHENA_REGRESSION_PCT:-60}" \
    python3 scripts/throughput_guard.py \
    BENCH_throughput.json BENCH_throughput.smoke.json

echo "check.sh: build + tests + throughput smoke + guard all green"

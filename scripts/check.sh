#!/usr/bin/env bash
# Local mirror of the tier-1 verify line (and what CI runs):
# configure, build everything, run the full test fleet, then a
# short-horizon throughput smoke that writes BENCH_throughput.json.
#
# Usage: scripts/check.sh [build-dir]
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build}"

cmake -B "$BUILD_DIR" -S .
cmake --build "$BUILD_DIR" -j
ctest --test-dir "$BUILD_DIR" --output-on-failure -j "$(nproc)"

ATHENA_SIM_INSTR="${ATHENA_SIM_INSTR:-200000}" \
ATHENA_WARMUP_INSTR="${ATHENA_WARMUP_INSTR:-20000}" \
    "$BUILD_DIR"/bench_throughput BENCH_throughput.json

echo "check.sh: build + tests + throughput smoke all green"

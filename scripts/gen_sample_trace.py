#!/usr/bin/env python3
"""Generate the tiny sample traces checked in under tests/data/.

Produces deterministic, self-contained traces in both on-disk
formats understood by src/trace/trace_file.{hh,cc}:

  sample_loop.txt  400 records, text format ("athena trace v1")
  sample_mix.bin   512 records, packed binary format ("ATRC")

The generator is a plain 64-bit LCG, so re-running this script
always reproduces the committed files byte for byte (the unit tests
pin record counts and spot-check records; CI never downloads
traces). Usage:

    python3 scripts/gen_sample_trace.py [outdir]   # default tests/data
"""

import os
import struct
import sys

MASK64 = (1 << 64) - 1

# Flags byte layout (must match trace_file.cc).
KIND_ALU, KIND_LOAD, KIND_STORE, KIND_BRANCH = 0, 1, 2, 3
FLAG_TAKEN = 1 << 2
FLAG_DEPENDS = 1 << 3
FLAG_CRITICAL = 1 << 4

MAGIC = b"ATRC"
VERSION = 1
RECORD_BYTES = 17


def lcg(state):
    return (state * 6364136223846793005 + 1442695040888963407) & MASK64


class Gen:
    """Deterministic record stream: a small loop of loads/stores/
    branches over a 1 MB footprint with a pointer-chase flavored
    tail, so the sample exercises every record field."""

    def __init__(self, seed):
        self.state = seed & MASK64

    def roll(self, mod):
        self.state = lcg(self.state)
        return (self.state >> 24) % mod

    def records(self, count):
        recs = []
        base = 0x7F0000000000
        for i in range(count):
            r = self.roll(100)
            if r < 40:  # load
                addr = base + self.roll(1 << 20) // 64 * 64 + self.roll(64)
                depends = self.roll(8) == 0
                critical = self.roll(4) == 0
                pc = 0x400000 + 0x10 * self.roll(4)
                recs.append((KIND_LOAD, pc, addr, False, depends, critical))
            elif r < 50:  # store
                addr = base + self.roll(1 << 20) // 64 * 64
                recs.append((KIND_STORE, 0x500000, addr, False, False, False))
            elif r < 65:  # branch
                pc = 0x600000 + 0x8 * self.roll(16)
                taken = self.roll(100) < 85
                recs.append((KIND_BRANCH, pc, 0, taken, False, False))
            else:  # alu
                recs.append((KIND_ALU, 0x700000, 0, False, False, False))
        return recs


def write_text(path, recs):
    with open(path, "w", newline="\n") as f:
        f.write("# athena trace v1\n")
        for kind, pc, addr, taken, depends, critical in recs:
            if kind == KIND_ALU:
                f.write(f"A 0x{pc:x}\n")
            elif kind == KIND_LOAD:
                flags = ("d" if depends else "") + ("c" if critical else "")
                f.write(f"L 0x{pc:x} 0x{addr:x}" +
                        (f" {flags}" if flags else "") + "\n")
            elif kind == KIND_STORE:
                f.write(f"S 0x{pc:x} 0x{addr:x}\n")
            else:
                f.write(f"B 0x{pc:x} {'T' if taken else 'N'}\n")


def write_binary(path, recs):
    with open(path, "wb") as f:
        header = MAGIC + struct.pack("<BBH", VERSION, RECORD_BYTES, 0)
        header += struct.pack("<Q", len(recs))
        f.write(header)
        for kind, pc, addr, taken, depends, critical in recs:
            flags = kind
            if taken:
                flags |= FLAG_TAKEN
            if depends:
                flags |= FLAG_DEPENDS
            if critical:
                flags |= FLAG_CRITICAL
            f.write(struct.pack("<QQB", pc, addr, flags))


def main():
    outdir = sys.argv[1] if len(sys.argv) > 1 else "tests/data"
    os.makedirs(outdir, exist_ok=True)

    text_recs = Gen(seed=0xA7EA).records(400)
    bin_recs = Gen(seed=0x7ACE).records(512)

    text_path = os.path.join(outdir, "sample_loop.txt")
    bin_path = os.path.join(outdir, "sample_mix.bin")
    write_text(text_path, text_recs)
    write_binary(bin_path, bin_recs)
    print(f"wrote {text_path} ({len(text_recs)} records), "
          f"{bin_path} ({len(bin_recs)} records)")


if __name__ == "__main__":
    main()
